package leashedsgd_test

// Cross-module integration tests: scenarios spanning the public facade,
// training runtime, checkpoint persistence, and dataset substrates.

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"leashedsgd"
)

// TestTrainCheckpointResume trains a model partway, checkpoints it, and
// verifies a custom evaluation on the restored parameters matches the
// recorded state — the full "train, save, ship, reload" user journey.
func TestTrainCheckpointResume(t *testing.T) {
	model := leashedsgd.SmallMLP(28*28, 10)
	ds := leashedsgd.SyntheticMNIST(256, 11)
	res, err := leashedsgd.Train(leashedsgd.Config{
		Algo:        leashedsgd.Async,
		Workers:     2,
		Eta:         0.05,
		BatchSize:   16,
		EpsilonFrac: 0.6,
		MaxTime:     20 * time.Second,
		Seed:        4,
	}, model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != leashedsgd.Converged {
		t.Fatalf("phase 1 outcome = %v", res.Outcome)
	}

	path := filepath.Join(t.TempDir(), "phase1.ckpt")
	if err := leashedsgd.SaveCheckpoint(path, model, res); err != nil {
		t.Fatal(err)
	}

	// Reload into a fresh, identically-shaped model.
	model2 := leashedsgd.SmallMLP(28*28, 10)
	params, err := leashedsgd.LoadCheckpoint(path, model2)
	if err != nil {
		t.Fatal(err)
	}
	loss2, acc2, err := model2.Evaluate(params, ds)
	if err != nil {
		t.Fatal(err)
	}
	// The checkpointed model must be meaningfully trained: below the 60%
	// target on the full dataset (the monitor evaluates a seeded random
	// subset, so allow slack) and better than random guessing.
	if loss2 > res.InitialLoss*0.8 {
		t.Fatalf("restored loss %v barely below initial %v", loss2, res.InitialLoss)
	}
	if acc2 < 0.3 {
		t.Fatalf("restored accuracy %v too low", acc2)
	}
}

// TestSeqDeterministicGivenUpdateBudget: with a fixed seed and a fixed
// update budget, sequential SGD must produce bit-identical parameters across
// runs — the reproducibility contract the per-worker RNG streams provide.
func TestSeqDeterministicGivenUpdateBudget(t *testing.T) {
	run := func() []float64 {
		model := leashedsgd.SmallMLP(28*28, 10)
		ds := leashedsgd.SyntheticMNIST(128, 9)
		res, err := leashedsgd.Train(leashedsgd.Config{
			Algo:       leashedsgd.Seq,
			Workers:    1,
			Eta:        0.05,
			BatchSize:  8,
			MaxUpdates: 120,
			MaxTime:    20 * time.Second,
			Seed:       42,
		}, model, ds)
		if err != nil {
			t.Fatal(err)
		}
		// The budget is exact by contract: workers reserve budget units
		// atomically before applying, so every bounded run applies the
		// same update count and the comparison below is always valid.
		if res.TotalUpdates != 120 {
			t.Fatalf("budget not exact: %d updates, want 120", res.TotalUpdates)
		}
		return res.FinalParams
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestIDXRoundTripThroughTraining generates a dataset, writes it in MNIST's
// IDX format via the mnistgen path, loads it back through the real-MNIST
// loader, and trains on it — the full offline-dataset workflow.
func TestIDXRoundTripThroughTraining(t *testing.T) {
	dir := t.TempDir()
	src := leashedsgd.SyntheticMNIST(200, 3)

	// Write via the same codec mnistgen uses (public facade offers load
	// only, so exercise the write path through the internal package via
	// the files' wire format: generate with the CLI-equivalent code).
	writeIDX(t, dir, src)

	ds, real := leashedsgd.LoadOrSynthesizeMNIST(dir, 0, 0)
	if !real {
		t.Fatal("IDX files not detected")
	}
	if ds.Len() != 200 {
		t.Fatalf("loaded %d samples", ds.Len())
	}
	model := leashedsgd.SmallMLP(28*28, 10)
	res, err := leashedsgd.Train(leashedsgd.Config{
		Algo:        leashedsgd.Hogwild,
		Workers:     2,
		Eta:         0.05,
		BatchSize:   16,
		EpsilonFrac: 0.6,
		MaxTime:     20 * time.Second,
	}, model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == leashedsgd.Crashed {
		t.Fatalf("training on IDX round-tripped data crashed")
	}
}

// TestAllAlgorithmsProduceFiniteParams sweeps every algorithm at small scale
// and asserts none leaves NaN/Inf in the final parameters.
func TestAllAlgorithmsProduceFiniteParams(t *testing.T) {
	ds := leashedsgd.SyntheticMNIST(128, 5)
	algos := []leashedsgd.Algorithm{
		leashedsgd.Seq, leashedsgd.Sync, leashedsgd.Async,
		leashedsgd.Hogwild, leashedsgd.Leashed, leashedsgd.LeashedAdaptive,
	}
	for _, algo := range algos {
		model := leashedsgd.SmallMLP(28*28, 10)
		res, err := leashedsgd.Train(leashedsgd.Config{
			Algo:        algo,
			Workers:     3,
			Eta:         0.05,
			BatchSize:   8,
			Persistence: 1,
			MaxUpdates:  60,
			MaxTime:     20 * time.Second,
		}, model, ds)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i, v := range res.FinalParams {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: param %d = %v", algo, i, v)
			}
		}
	}
}

// writeIDX writes the dataset in IDX format using the same byte layout the
// internal codec produces (verified against internal/data's tests).
func writeIDX(t *testing.T, dir string, ds *leashedsgd.Dataset) {
	t.Helper()
	// IDX3 images.
	img := make([]byte, 0, 16+len(ds.X)*ds.H*ds.W)
	img = append(img, 0, 0, 0x08, 3)
	img = appendBE32(img, uint32(len(ds.X)))
	img = appendBE32(img, uint32(ds.H))
	img = appendBE32(img, uint32(ds.W))
	for _, x := range ds.X {
		for _, p := range x {
			switch {
			case p <= 0:
				img = append(img, 0)
			case p >= 1:
				img = append(img, 255)
			default:
				img = append(img, byte(p*255+0.5))
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	// IDX1 labels.
	lbl := make([]byte, 0, 8+len(ds.Y))
	lbl = append(lbl, 0, 0, 0x08, 1)
	lbl = appendBE32(lbl, uint32(len(ds.Y)))
	for _, y := range ds.Y {
		lbl = append(lbl, byte(y))
	}
	if err := os.WriteFile(filepath.Join(dir, "train-labels-idx1-ubyte"), lbl, 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendBE32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
