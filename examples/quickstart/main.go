// Command quickstart is the smallest end-to-end use of the library: train
// the laptop-scale MLP with Leashed-SGD and print the convergence summary.
//
// Usage:
//
//	go run ./examples/quickstart [-workers N] [-algo LSH|ASYNC|HOG|SEQ]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"leashedsgd"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "number of SGD worker goroutines (m)")
	algoName := flag.String("algo", "LSH", "algorithm: SEQ, ASYNC, HOG, LSH")
	persistence := flag.Int("persistence", leashedsgd.PersistenceInf, "LSH persistence bound Tp (-1 = infinite)")
	eta := flag.Float64("eta", 0.05, "step size")
	flag.Parse()

	var algo leashedsgd.Algorithm
	switch *algoName {
	case "SEQ":
		algo = leashedsgd.Seq
	case "ASYNC":
		algo = leashedsgd.Async
	case "HOG":
		algo = leashedsgd.Hogwild
	case "LSH":
		algo = leashedsgd.Leashed
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	model := leashedsgd.SmallMLP(28*28, 10)
	ds := leashedsgd.SyntheticMNIST(1024, 1)
	fmt.Printf("model: %s\ndataset: %d samples of %dx%d, %d classes\n",
		model.Arch(), ds.Len(), ds.H, ds.W, ds.Classes)

	cfg := leashedsgd.Config{
		Algo:        algo,
		Workers:     *workers,
		Eta:         *eta,
		BatchSize:   16,
		Persistence: *persistence,
		EpsilonFrac: 0.25, // stop at 25% of the initial loss
		MaxTime:     60 * time.Second,
		Seed:        1,
	}
	fmt.Printf("training with %s, m=%d, eta=%g ...\n", algo, cfg.Workers, cfg.Eta)
	res, err := leashedsgd.Train(cfg, model, ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noutcome:        %s\n", res.Outcome)
	fmt.Printf("loss:           %.4f -> %.4f (target %.4f)\n", res.InitialLoss, res.FinalLoss, res.TargetLoss)
	if res.Outcome == leashedsgd.Converged {
		fmt.Printf("time to eps:    %v\n", res.TimeToTarget.Round(time.Millisecond))
		fmt.Printf("updates to eps: %d\n", res.UpdatesToTarget)
	}
	fmt.Printf("total updates:  %d (%.3f ms/update)\n", res.TotalUpdates,
		float64(res.TimePerUpdate())/float64(time.Millisecond))
	fmt.Printf("staleness:      mean %.2f, max %d\n", res.Staleness.Mean(), res.Staleness.Max())
	if algo == leashedsgd.Leashed {
		fmt.Printf("contention:     %d failed CAS, %d dropped gradients\n", res.FailedCAS, res.DroppedUpdates)
		fmt.Printf("reads:          %d consistent, %d mixed-version (zero-copy leases)\n",
			res.ConsistentReads, res.MixedReads)
		fmt.Printf("memory:         peak %d ParameterVector buffers (%d allocs, %d reuses)\n",
			res.PeakLiveVectors, res.BufferAllocs, res.BufferReuses)
	}
}
