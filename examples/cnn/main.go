// Command cnn is the paper's S3 experiment at laptop scale: CNN training
// under Leashed-SGD vs the baselines. The CNN's high Tc/Tu ratio (expensive
// convolutions, small parameter vector) is the regime where Leashed-SGD's
// dynamic allocation gives its memory advantage (paper Sec. V-3, Fig. 7/10).
//
// Usage:
//
//	go run ./examples/cnn [-workers N] [-epsilon 0.5] [-paper]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"leashedsgd"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count m")
	epsilon := flag.Float64("epsilon", 0.5, "convergence threshold fraction")
	paper := flag.Bool("paper", false, "use the full Table III CNN (d=27,354)")
	samples := flag.Int("samples", 512, "synthetic dataset size")
	budget := flag.Duration("budget", 90*time.Second, "per-run time budget")
	flag.Parse()

	ds := leashedsgd.SyntheticMNIST(*samples, 1)
	newModel := func() *leashedsgd.Model {
		if *paper {
			return leashedsgd.PaperCNN()
		}
		return leashedsgd.SmallCNN()
	}
	fmt.Printf("model: %s\n\n", newModel().Arch())

	run := func(name string, algo leashedsgd.Algorithm, persistence int) *leashedsgd.Result {
		res, err := leashedsgd.Train(leashedsgd.Config{
			Algo:         algo,
			Workers:      *workers,
			Eta:          0.05,
			BatchSize:    8,
			Persistence:  persistence,
			EpsilonFrac:  *epsilon,
			MaxTime:      *budget,
			Seed:         1,
			SampleTiming: true,
		}, newModel(), ds)
		if err != nil {
			log.Fatal(err)
		}
		tts := "-"
		if res.Outcome == leashedsgd.Converged {
			tts = res.TimeToTarget.Round(time.Millisecond).String()
		}
		fmt.Printf("%-10s %-10s time-to-eps=%-10s Tc(med)=%-8v Tu(med)=%-8v peak-vectors=%d\n",
			name, res.Outcome, tts,
			res.Tc.Mean().Round(10*time.Microsecond),
			res.Tu.Mean().Round(10*time.Microsecond),
			res.PeakLiveVectors)
		return res
	}

	async := run("ASYNC", leashedsgd.Async, 0)
	run("HOG", leashedsgd.Hogwild, 0)
	lsh := run("LSH_ps0", leashedsgd.Leashed, 0)

	// The paper's Fig. 10 CNN claim: Leashed's dynamic allocation lowers
	// the footprint versus the baselines' constant 2m+1 instances when
	// gradient computation dominates (high Tc/Tu).
	fmt.Printf("\nmemory: ASYNC peak %d vs LSH peak %d ParameterVector buffers\n",
		async.PeakLiveVectors, lsh.PeakLiveVectors)
	if lsh.PeakLiveVectors < async.PeakLiveVectors {
		fmt.Println("-> Leashed-SGD used less parameter memory, matching the paper's CNN result.")
	} else {
		fmt.Println("-> no memory advantage at this scale (expected when Tc/Tu is small).")
	}
}
