// Command sparse demonstrates HOGWILD!'s original home turf — smooth convex
// objectives with sparse gradients (the regime the paper's introduction
// contrasts with dense DL training) — running through the SAME unified
// pipeline as the dense experiments: sparse logistic regression with planted
// ground truth under SEQ, lock-based ASYNC, HOGWILD!, and sharded
// Leashed-SGD. Sparse gradients flow through the worker loop in index/value
// form, so the sharded Leashed rows scatter-publish only the chains each step
// touches; the occupancy column (touched components per publish) makes that
// visible next to the contention counters.
//
// Usage:
//
//	go run ./examples/sparse [-dim 5000] [-nnz 10] [-workers N] [-shards S]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"leashedsgd"
)

func main() {
	dim := flag.Int("dim", 5000, "feature dimension")
	nnz := flag.Int("nnz", 10, "non-zeros per example")
	n := flag.Int("n", 4000, "examples")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "workers")
	shards := flag.Int("shards", 16, "Leashed shard count for the sharded row")
	updates := flag.Int64("updates", 100000, "update budget")
	flag.Parse()

	ds := leashedsgd.SyntheticSparse(*n, *dim, *nnz, 1)
	zero := make([]float64, ds.Dim)
	fmt.Printf("sparse logistic regression: %d examples, dim %d, nnz %d\n", *n, *dim, *nnz)
	fmt.Printf("loss at zero weights: %.4f (ln 2 = %.4f); at planted truth: %.4f\n\n",
		leashedsgd.SparseLoss(zero, ds), math.Ln2, leashedsgd.SparseLoss(ds.Truth, ds))

	run := func(name string, algo leashedsgd.Algorithm, m, s int) {
		start := time.Now()
		res, err := leashedsgd.TrainSparse(leashedsgd.Config{
			Algo:        algo,
			Workers:     m,
			Shards:      s,
			Eta:         0.1,
			Persistence: leashedsgd.PersistenceInf,
			Seed:        2,
			MaxUpdates:  *updates,
			MaxTime:     5 * time.Minute,
			EvalEvery:   50 * time.Millisecond,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		line := fmt.Sprintf("%-12s m=%-3d S=%-4d final loss %.4f in %-10v (%d updates)",
			name, m, s, res.FinalLoss, elapsed.Round(time.Millisecond), res.TotalUpdates)
		if res.Publishes > 0 && res.TouchedComponents > 0 {
			line += fmt.Sprintf("  occupancy %.1f/%d components per publish",
				float64(res.TouchedComponents)/float64(res.Publishes), ds.Dim/max(s, 1))
		}
		if res.FailedCAS > 0 || res.DroppedUpdates > 0 {
			line += fmt.Sprintf("  failedCAS=%d dropped=%d", res.FailedCAS, res.DroppedUpdates)
		}
		fmt.Println(line)
	}

	run("SEQ", leashedsgd.Seq, 1, 1)
	run("ASYNC", leashedsgd.Async, *workers, 1)
	run("HOGWILD", leashedsgd.Hogwild, *workers, 1)
	run("LSH", leashedsgd.Leashed, *workers, 1)
	run("LSH-sharded", leashedsgd.Leashed, *workers, *shards)

	fmt.Println("\nWith sparse gradients an update touches only ~nnz of d components: HOGWILD!'s")
	fmt.Println("uncoordinated adds almost never collide, and sharded Leashed-SGD publishes only")
	fmt.Println("the few chains each step hits (the occupancy column) — untouched chains see no")
	fmt.Println("CAS, no copy, no pool traffic. Dense DL gradients (examples/mlp) are the")
	fmt.Println("opposite regime, which is what motivates the consistency-preserving design.")
}
