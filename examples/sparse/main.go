// Command sparse demonstrates HOGWILD!'s original home turf — smooth convex
// objectives with sparse gradients (the regime the paper's introduction
// contrasts with dense DL training). It trains sparse logistic regression
// with planted ground truth under sequential, locked, and HOGWILD!-style
// component-atomic SGD, and reports collision rates: with sparse gradients
// the uncoordinated updates almost never touch the same coordinate, which
// is why HOGWILD! wins here while dense DL exposes its inconsistency.
//
// Usage:
//
//	go run ./examples/sparse [-dim 5000] [-nnz 10] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"leashedsgd/internal/sparse"
)

func main() {
	dim := flag.Int("dim", 5000, "feature dimension")
	nnz := flag.Int("nnz", 10, "non-zeros per example")
	n := flag.Int("n", 4000, "examples")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "workers")
	updates := flag.Int64("updates", 100000, "update budget")
	flag.Parse()

	ds := sparse.Generate(sparse.GenConfig{N: *n, Dim: *dim, NNZ: *nnz, Seed: 1, Noise: 0.02})
	zero := make([]float64, ds.Dim)
	fmt.Printf("sparse logistic regression: %d examples, dim %d, nnz %d\n", *n, *dim, *nnz)
	fmt.Printf("loss at zero weights: %.4f (ln 2 = %.4f); at planted truth: %.4f\n\n",
		sparse.Loss(zero, ds), math.Ln2, sparse.Loss(ds.Truth, ds))

	run := func(name string, mode sparse.Mode, m int) {
		start := time.Now()
		res, err := sparse.Train(sparse.TrainConfig{
			Mode: mode, Workers: m, Eta: 0.1, Updates: *updates, Seed: 2,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		line := fmt.Sprintf("%-8s m=%-3d final loss %.4f in %-10v (%d updates)",
			name, m, res.FinalLoss, elapsed.Round(time.Millisecond), res.Updates)
		if mode == sparse.ModeHogwild {
			writes := res.Updates * int64(*nnz)
			line += fmt.Sprintf("  CAS collisions: %d of %d component writes (%.4f%%)",
				res.Collisions, writes, 100*float64(res.Collisions)/float64(writes))
		}
		fmt.Println(line)
	}

	run("SEQ", sparse.ModeSeq, 1)
	run("LOCKED", sparse.ModeLocked, *workers)
	run("HOGWILD", sparse.ModeHogwild, *workers)

	fmt.Println("\nWith sparse gradients the HOGWILD! collision rate is near zero — the")
	fmt.Println("regime where synchronization-free SGD is effectively consistent for free.")
	fmt.Println("Dense DL gradients (examples/mlp) are the opposite regime, which is what")
	fmt.Println("motivates Leashed-SGD's consistency-preserving lock-free design.")
}
