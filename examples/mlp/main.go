// Command mlp reproduces the paper's headline MLP comparison at laptop
// scale: it races ASYNC, HOGWILD! and Leashed-SGD (three persistence bounds)
// on the same dataset and prints the Fig. 3-style comparison — wall-clock
// time to ε-convergence, time per iteration, staleness and memory.
//
// Usage:
//
//	go run ./examples/mlp [-workers N] [-epsilon 0.5] [-mnist DIR] [-paper]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"leashedsgd"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count m")
	epsilon := flag.Float64("epsilon", 0.5, "convergence threshold as a fraction of the initial loss")
	mnistDir := flag.String("mnist", "", "directory with real MNIST IDX files (optional)")
	paper := flag.Bool("paper", false, "use the full paper-scale MLP (d=134,794); much slower")
	samples := flag.Int("samples", 1024, "dataset size when synthesizing")
	budget := flag.Duration("budget", 60*time.Second, "per-run time budget")
	flag.Parse()

	ds, real := leashedsgd.LoadOrSynthesizeMNIST(*mnistDir, *samples, 1)
	src := "synthetic"
	if real {
		src = "real MNIST"
	}
	newModel := func() *leashedsgd.Model {
		if *paper {
			return leashedsgd.PaperMLP()
		}
		return leashedsgd.SmallMLP(28*28, 10)
	}
	fmt.Printf("dataset: %s (%d samples); model: %s\n\n", src, ds.Len(), newModel().Arch())

	type entry struct {
		name        string
		algo        leashedsgd.Algorithm
		persistence int
	}
	entries := []entry{
		{"ASYNC", leashedsgd.Async, 0},
		{"HOG", leashedsgd.Hogwild, 0},
		{"LSH_psInf", leashedsgd.Leashed, leashedsgd.PersistenceInf},
		{"LSH_ps1", leashedsgd.Leashed, 1},
		{"LSH_ps0", leashedsgd.Leashed, 0},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algo\toutcome\ttime to eps\tupdates\tms/update\tstaleness(mean)\tpeak vectors")
	for _, e := range entries {
		res, err := leashedsgd.Train(leashedsgd.Config{
			Algo:        e.algo,
			Workers:     *workers,
			Eta:         0.05,
			BatchSize:   16,
			Persistence: e.persistence,
			EpsilonFrac: *epsilon,
			MaxTime:     *budget,
			Seed:        1,
		}, newModel(), ds)
		if err != nil {
			log.Fatal(err)
		}
		tts := "-"
		upd := "-"
		if res.Outcome == leashedsgd.Converged {
			tts = res.TimeToTarget.Round(time.Millisecond).String()
			upd = fmt.Sprintf("%d", res.UpdatesToTarget)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3f\t%.2f\t%d\n",
			e.name, res.Outcome, tts, upd,
			float64(res.TimePerUpdate())/float64(time.Millisecond),
			res.Staleness.Mean(), res.PeakLiveVectors)
	}
	w.Flush()
	fmt.Println("\nExpected shape (paper Fig. 3/4): Leashed variants converge at least as fast as")
	fmt.Println("the baselines, with lower staleness for tighter persistence bounds, and the")
	fmt.Println("LSH peak-vector count stays within the Lemma 2 bound of 3m.")
}
