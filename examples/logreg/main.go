// Command logreg exercises the paper's claim that the framework "applies as
// parallelization of SGD for any optimization problem": it builds a convex
// workload — multinomial logistic regression (a single softmax layer) on
// synthetic Gaussian clusters — and runs the full algorithm family on it.
//
// Convex, low-dimensional problems are HOGWILD!'s home turf (smooth targets,
// cheap gradients); the comparison here shows the framework handles the
// regime where the baselines are strongest, complementing the DL examples.
//
// Usage:
//
//	go run ./examples/logreg [-dim 64] [-n 2000] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"leashedsgd"
)

// makeClusters builds a k-class Gaussian-cluster classification dataset in
// R^dim with unit-separated means, shaped as 1×dim "images" so it flows
// through the same Dataset type the DL experiments use.
func makeClusters(n, dim, k int, seed int64) *leashedsgd.Dataset {
	// Small deterministic LCG; good enough for cluster jitter and keeps
	// the example dependency-free.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11) / (1 << 53)
	}
	gauss := func() float64 {
		// Box-Muller.
		u1, u2 := next(), next()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	means := make([][]float64, k)
	for c := range means {
		means[c] = make([]float64, dim)
		for j := range means[c] {
			means[c][j] = 2 * gauss()
		}
	}
	ds := &leashedsgd.Dataset{H: 1, W: dim, Classes: k}
	for i := 0; i < n; i++ {
		c := i % k
		x := make([]float64, dim)
		for j := range x {
			x[j] = means[c][j] + 0.8*gauss()
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, c)
	}
	return ds
}

func main() {
	dim := flag.Int("dim", 64, "feature dimension")
	n := flag.Int("n", 2000, "sample count")
	k := flag.Int("k", 4, "class count")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
	flag.Parse()

	ds := makeClusters(*n, *dim, *k, 7)
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logistic regression: %d samples, dim %d, %d classes\n\n", *n, *dim, *k)

	for _, e := range []struct {
		name        string
		algo        leashedsgd.Algorithm
		persistence int
	}{
		{"SEQ", leashedsgd.Seq, 0},
		{"ASYNC", leashedsgd.Async, 0},
		{"HOG", leashedsgd.Hogwild, 0},
		{"LSH_ps0", leashedsgd.Leashed, 0},
	} {
		// A softmax layer with no hidden layers IS multinomial logistic
		// regression; the convex target of the paper's Sec. I references.
		model := leashedsgd.MLP(*dim, nil, *k)
		res, err := leashedsgd.Train(leashedsgd.Config{
			Algo:        e.algo,
			Workers:     *workers,
			Eta:         0.1,
			BatchSize:   8,
			Persistence: e.persistence,
			EpsilonFrac: 0.2,
			MaxTime:     30 * time.Second,
			Seed:        1,
		}, model, ds)
		if err != nil {
			log.Fatal(err)
		}
		tts := "-"
		if res.Outcome == leashedsgd.Converged {
			tts = res.TimeToTarget.Round(time.Millisecond).String()
		}
		fmt.Printf("%-8s %-10s time-to-20%%=%-9s updates=%-7d staleness(mean)=%.2f\n",
			e.name, res.Outcome, tts, res.TotalUpdates, res.Staleness.Mean())
	}
	fmt.Println("\nOn this smooth convex target all variants converge; the differences the")
	fmt.Println("paper studies appear in the non-convex DL workloads (examples/mlp, examples/cnn).")
}
