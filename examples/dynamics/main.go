// Command dynamics explores the paper's Section IV analysis numerically:
// it prints the fluid-model trajectory n_t of threads in the LAU-SPC retry
// loop (Theorem 3), the fixed points under increasing persistence gain γ
// (Corollaries 3.1/3.2), and validates the model against the discrete-event
// simulator.
//
// Usage:
//
//	go run ./examples/dynamics [-m 16] [-tc 10] [-tu 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"leashedsgd/internal/queuemodel"
	"leashedsgd/internal/report"
)

func main() {
	m := flag.Int("m", 16, "worker count")
	tc := flag.Float64("tc", 10, "gradient computation time Tc (arbitrary units)")
	tu := flag.Float64("tu", 2, "retry-loop pass time Tu")
	flag.Parse()

	p := queuemodel.Params{M: *m, Tc: *tc, Tu: *tu}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fluid model: m=%d Tc=%g Tu=%g\n", *m, *tc, *tu)
	fmt.Printf("fixed point n* = %.3f (balance n*/m = %.3f)\n\n", p.FixedPoint(), p.Balance())

	// Theorem 3 trajectory from an empty retry loop.
	traj := p.Trajectory(100, 0)
	var s report.Series
	s.Name = "n_t (fluid)"
	for t, n := range traj {
		s.X = append(s.X, float64(t))
		s.Y = append(s.Y, n)
	}
	report.Chart(os.Stdout, "Theorem 3: retry-loop occupancy n_t -> n*", 70, 14, []report.Series{s})

	// Corollary 3.2: the persistence gain shifts the fixed point down.
	tbl := report.NewTable("Corollary 3.2: fixed point and E[tau_s] vs persistence gain",
		"gamma", "n*_gamma", "E[tau_s]")
	for _, gamma := range []float64{0, 0.25, 0.5, 1, 2, 4, 16} {
		pg := queuemodel.Params{M: *m, Tc: *tc, Tu: *tu, Gamma: gamma}
		tbl.AddRow(fmt.Sprintf("%.2f", gamma),
			fmt.Sprintf("%.3f", pg.FixedPoint()),
			fmt.Sprintf("%.3f", pg.ExpectedTauS()))
	}
	fmt.Println()
	tbl.Render(os.Stdout)

	// Validate against the discrete-event simulator.
	fmt.Println()
	ideal := queuemodel.Simulate(p, queuemodel.SimOptions{Tp: -1, Steps: 200000, Seed: 7})
	contended := queuemodel.Simulate(p, queuemodel.SimOptions{Tp: -1, Contention: true, Steps: 200000, Seed: 7})
	ps0 := queuemodel.Simulate(p, queuemodel.SimOptions{Tp: 0, Contention: true, Steps: 200000, Seed: 7})
	fmt.Printf("simulator occupancy: ideal %.3f (fluid predicts %.3f), contended %.3f, Tp=0 %.3f\n",
		ideal.MeanOccupancy, p.FixedPoint(), contended.MeanOccupancy, ps0.MeanOccupancy)
	fmt.Printf("simulator tau_s:     contended %.3f -> Tp=0 %.3f (dropped %d gradients)\n",
		contended.MeanTauS, ps0.MeanTauS, ps0.Dropped)
	fmt.Println("\nThe Tp=0 column shows the contention-regulation mechanism: bounding CAS")
	fmt.Println("retries drains the retry loop and cuts the scheduling staleness component.")

	// Inverse direction: feed the simulator's windowed counters to the
	// online estimator (queuemodel.FitWindows — the same fit the
	// AutoTuneModel controller runs on live training counters) and compare
	// its occupancy prediction against what the simulator actually did.
	fmt.Println()
	var obs []queuemodel.Observation
	for seed := uint64(1); seed <= 4; seed++ {
		w := queuemodel.Simulate(p, queuemodel.SimOptions{
			Tp: -1, Contention: true, Steps: 50000, Seed: seed})
		obs = append(obs, queuemodel.Observation{
			Failed: w.FailedCAS, Published: w.Published})
	}
	fit, err := queuemodel.FitWindows(queuemodel.FitConfig{
		M: *m, Shards: 1, Tp: -1, Tc: *tc, Tu: *tu}, obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverse fit from %d simulated counter windows:\n", fit.Windows)
	fmt.Printf("  failed/publish %.3f -> q=%.3f, contention estimate %.3f\n",
		fit.FailedPerPublish, fit.Q, fit.Contention)
	fmt.Printf("  fitted-model occupancy %.3f vs simulated %.3f (residual %.3f)\n",
		fit.Occupancy, contended.MeanOccupancy, fit.Residual)
	fmt.Printf("  predicted knee: S=%d at 5%% per-chain CAS loss, Tp=%d at 20%% mixed reads\n",
		fit.PredictShards([]int{1, 2, 4, 8, 16}, 0.05),
		fit.PredictTp([]int{16, 8, 4, 2, 1, 0}, fit.PredictShards([]int{1, 2, 4, 8, 16}, 0.05), 0.2))
	fmt.Println("\nThe fit closes the loop the paper's analysis opens: the counters a live")
	fmt.Println("run already samples are enough to recover (Tc/Tu, q, gamma) and jump to")
	fmt.Println("the predicted operating point (Config.AutoTuneModel).")
}
